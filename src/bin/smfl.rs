//! `smfl` — command-line front end for the SMFL reproduction.
//!
//! ```text
//! smfl impute --input data.csv --output filled.csv [--rank 6] [--lambda 0.1]
//!             [--p 3] [--spatial-cols 2] [--variant smfl|smf|nmf] [--seed 0]
//!             [--model model.txt]
//! smfl repair --input data.csv --output repaired.csv [same options]
//! smfl detect --input data.csv --output flags.csv [--spatial-cols 2]
//! smfl tune   --input data.csv [--spatial-cols 2]
//! ```
//!
//! Input CSVs use empty cells (or `nan` / `?`) for missing values; all
//! other cells must be numeric. The first `--spatial-cols` columns are
//! treated as coordinates. `repair` first runs the Raha-lite detector,
//! then replaces the flagged cells with factorization values. `tune`
//! grid-searches λ/p/K by masked validation and prints the ranking.

use smfl_baselines::{ErrorDetector, RahaLite};
use smfl_core::{fit, ParamGrid, SmflConfig, Variant};
use smfl_datasets::csv::{from_csv_str_with_missing, to_csv_string, to_csv_string_with_missing};
use smfl_datasets::MinMaxScaler;
use smfl_linalg::{Mask, Matrix};
use std::process::ExitCode;

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            let value = it
                .next()
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_string(), value.clone()));
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }
}

fn usage() -> String {
    "usage: smfl <impute|repair|detect|tune> --input <csv> [--output <csv>]\n\
     options: --rank K --lambda L --p P --spatial-cols N --variant smfl|smf|nmf\n\
     \x20        --seed S --max-iter T --model <path>  (see crate docs)"
        .to_string()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<String, String> {
    let command = argv.first().ok_or_else(usage)?.as_str();
    if !matches!(command, "impute" | "repair" | "detect" | "tune") {
        return Err(format!("unknown command {command:?}"));
    }
    let args = Args::parse(&argv[1..])?;
    let input = args.get("input").ok_or("--input is required")?;
    let text = std::fs::read_to_string(input).map_err(|e| format!("reading {input}: {e}"))?;
    let (columns, raw, omega) =
        from_csv_str_with_missing(&text).map_err(|e| format!("parsing {input}: {e}"))?;

    match command {
        "impute" => impute_cmd(&args, &columns, &raw, &omega, false),
        "repair" => impute_cmd(&args, &columns, &raw, &omega, true),
        "detect" => detect_cmd(&args, &columns, &raw),
        "tune" => tune_cmd(&args, &raw, &omega),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn config_from(args: &Args, raw: &Matrix) -> Result<SmflConfig, String> {
    let spatial_cols: usize = args.parsed("spatial-cols", 2)?;
    let rank: usize = args.parsed("rank", 6)?;
    let variant = match args.get("variant").unwrap_or("smfl") {
        "smfl" => Variant::Smfl,
        "smf" => Variant::Smf,
        "nmf" => Variant::Nmf,
        other => return Err(format!("--variant: unknown {other:?}")),
    };
    let base = match variant {
        Variant::Smfl => SmflConfig::smfl(rank, spatial_cols),
        Variant::Smf => SmflConfig::smf(rank, spatial_cols),
        Variant::Nmf => SmflConfig::nmf(rank),
    };
    let (default_lambda, default_p) = (base.lambda, base.p_neighbors);
    let config = base
        .with_lambda(args.parsed("lambda", default_lambda)?)
        .with_p(args.parsed("p", default_p)?)
        .with_seed(args.parsed("seed", 0u64)?)
        .with_max_iter(args.parsed("max-iter", 500usize)?);
    if config.rank >= raw.rows() {
        return Err(format!(
            "--rank {} must be below the number of rows ({})",
            config.rank,
            raw.rows()
        ));
    }
    Ok(config)
}

fn impute_cmd(
    args: &Args,
    columns: &[String],
    raw: &Matrix,
    omega: &Mask,
    repair_mode: bool,
) -> Result<String, String> {
    let output = args.get("output").ok_or("--output is required")?;
    let config = config_from(args, raw)?;

    // Normalize on the observed cells only, fit, then denormalize.
    let observed_rows = raw.clone();
    let (scaler, normed) =
        MinMaxScaler::fit_transform(&observed_rows).map_err(|e| e.to_string())?;

    let (work_omega, detected) = if repair_mode {
        // Detect dirty cells among the *observed* ones, then treat both
        // the missing and the dirty cells as unobserved.
        let detector = RahaLite {
            spatial_cols: config.spatial_cols,
            ..RahaLite::default()
        };
        let dirty = detector.detect(&normed).map_err(|e| e.to_string())?;
        let dirty_observed = dirty.and(omega).map_err(|e| e.to_string())?;
        (
            omega.and(&dirty_observed.complement()).map_err(|e| e.to_string())?,
            dirty_observed.count(),
        )
    } else {
        (omega.clone(), 0)
    };

    let masked = work_omega.apply(&normed).map_err(|e| e.to_string())?;
    let model = fit(&masked, &work_omega, &config).map_err(|e| format!("fit failed: {e}"))?;
    let completed = model
        .impute(&masked, &work_omega)
        .map_err(|e| e.to_string())?;
    let denormed = scaler
        .inverse_transform(&completed)
        .map_err(|e| e.to_string())?;
    // Observed (and clean) cells keep their original raw values exactly.
    let final_matrix = work_omega.blend(raw, &denormed).map_err(|e| e.to_string())?;

    std::fs::write(output, to_csv_string(columns, &final_matrix))
        .map_err(|e| format!("writing {output}: {e}"))?;
    if let Some(model_path) = args.get("model") {
        smfl_core::io::save(&model, std::path::Path::new(model_path))
            .map_err(|e| format!("writing {model_path}: {e}"))?;
    }
    let filled = work_omega.complement().count();
    Ok(if repair_mode {
        format!(
            "repaired {detected} detected cells (plus {} originally missing) -> {output} \
             [{} iterations, converged: {}]",
            filled - detected,
            model.iterations,
            model.converged
        )
    } else {
        format!(
            "imputed {filled} cells -> {output} [{} iterations, converged: {}]",
            model.iterations, model.converged
        )
    })
}

fn detect_cmd(args: &Args, columns: &[String], raw: &Matrix) -> Result<String, String> {
    let output = args.get("output").ok_or("--output is required")?;
    let spatial_cols: usize = args.parsed("spatial-cols", 2)?;
    let (_, normed) = MinMaxScaler::fit_transform(raw).map_err(|e| e.to_string())?;
    let detector = RahaLite {
        spatial_cols,
        ..RahaLite::default()
    };
    let dirty = detector.detect(&normed).map_err(|e| e.to_string())?;
    // Write the data with flagged cells blanked, so the output is itself
    // a valid `impute`/`repair` input.
    let clean_mask = dirty.complement();
    std::fs::write(
        output,
        to_csv_string_with_missing(columns, raw, &clean_mask),
    )
    .map_err(|e| format!("writing {output}: {e}"))?;
    Ok(format!(
        "flagged {} suspicious cells (blanked) -> {output}",
        dirty.count()
    ))
}

fn tune_cmd(args: &Args, raw: &Matrix, omega: &Mask) -> Result<String, String> {
    let config = config_from(args, raw)?;
    let (_, normed) = MinMaxScaler::fit_transform(raw).map_err(|e| e.to_string())?;
    let masked = omega.apply(&normed).map_err(|e| e.to_string())?;
    let result = smfl_core::grid_search(
        &masked,
        omega,
        &config.with_max_iter(150),
        &ParamGrid::paper_ranges(),
        2,
        0.1,
    )
    .map_err(|e| format!("grid search failed: {e}"))?;
    let mut out = String::from("rank | lambda | p | K | validation RMS\n");
    for (idx, s) in result.ranking().iter().enumerate().take(10) {
        out.push_str(&format!(
            "{:>4} | {:>6} | {} | {} | {:.4}\n",
            idx + 1,
            s.config.lambda,
            s.config.p_neighbors,
            s.config.rank,
            s.validation_rms
        ));
    }
    if !result.skipped().is_empty() || result.fit_failures() > 0 {
        out.push_str(&format!(
            "skipped candidates: {} | failed fold fits: {} | empty folds: {}\n",
            result.skipped().len(),
            result.fit_failures(),
            result.skipped_folds()
        ));
    }
    out.push_str(&format!(
        "best: --lambda {} --p {} --rank {}",
        result.best().config.lambda,
        result.best().config.p_neighbors,
        result.best().config.rank
    ));
    Ok(out)
}
