//! # smfl-suite
//!
//! Umbrella crate of the SMFL reproduction (*Matrix Factorization with
//! Landmarks for Spatial Data*, ICDE 2023). It re-exports the workspace
//! crates under one roof and hosts the runnable examples
//! (`cargo run --example quickstart`) and the cross-crate integration
//! tests (`tests/`).
//!
//! Crate map:
//!
//! - [`core`] (`smfl-core`) — the SMFL / SMF / NMF models;
//! - [`linalg`] (`smfl-linalg`) — dense + sparse linear algebra, masks,
//!   SVD;
//! - [`spatial`] (`smfl-spatial`) — kd-tree kNN, k-means, graph
//!   Laplacian;
//! - [`baselines`] (`smfl-baselines`) — the 12-method comparison suite
//!   plus repairers and clusterers;
//! - [`datasets`] (`smfl-datasets`) — synthetic spatial datasets and
//!   corruption protocols;
//! - [`eval`] (`smfl-eval`) — RMS / clustering-accuracy / route-fuel
//!   criteria;
//! - [`nn`] (`smfl-nn`) — the MLP substrate behind GAIN and CAMF.

#![warn(missing_docs)]

pub use smfl_baselines as baselines;
pub use smfl_core as core;
pub use smfl_datasets as datasets;
pub use smfl_eval as eval;
pub use smfl_linalg as linalg;
pub use smfl_nn as nn;
pub use smfl_spatial as spatial;
