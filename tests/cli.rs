//! End-to-end tests of the `smfl` command-line tool, driving the real
//! binary (`CARGO_BIN_EXE_smfl`) over temp-file CSVs.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_smfl"))
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smfl_cli_{}_{name}", std::process::id()))
}

/// Spatially structured CSV with some empty (missing) cells.
fn write_sample(path: &PathBuf, n: usize) {
    let mut text = String::from("lat,lon,a,b\n");
    for i in 0..n {
        let x = (i % 17) as f64 / 17.0;
        let y = (i % 23) as f64 / 23.0;
        let a = 0.3 + 0.4 * x + 0.1 * y;
        let b = 0.7 - 0.3 * y;
        if i % 6 == 0 {
            text.push_str(&format!("{x:.4},{y:.4},,{b:.4}\n"));
        } else {
            text.push_str(&format!("{x:.4},{y:.4},{a:.4},{b:.4}\n"));
        }
    }
    std::fs::write(path, text).unwrap();
}

#[test]
fn impute_fills_every_missing_cell() {
    let input = temp("in.csv");
    let output = temp("out.csv");
    write_sample(&input, 90);
    let status = bin()
        .args(["impute", "--input"])
        .arg(&input)
        .arg("--output")
        .arg(&output)
        .args(["--rank", "4", "--max-iter", "60"])
        .status()
        .unwrap();
    assert!(status.success());
    let text = std::fs::read_to_string(&output).unwrap();
    // No empty cells remain.
    for (lineno, line) in text.lines().enumerate().skip(1) {
        for cell in line.split(',') {
            assert!(!cell.trim().is_empty(), "empty cell on line {}", lineno + 1);
            cell.trim().parse::<f64>().expect("numeric cell");
        }
    }
    let _ = std::fs::remove_file(&input);
    let _ = std::fs::remove_file(&output);
}

#[test]
fn impute_preserves_observed_values_exactly() {
    let input = temp("in2.csv");
    let output = temp("out2.csv");
    write_sample(&input, 60);
    assert!(bin()
        .args(["impute", "--input"])
        .arg(&input)
        .arg("--output")
        .arg(&output)
        .args(["--rank", "3", "--max-iter", "30"])
        .status()
        .unwrap()
        .success());
    let before = std::fs::read_to_string(&input).unwrap();
    let after = std::fs::read_to_string(&output).unwrap();
    for (lb, la) in before.lines().zip(after.lines()).skip(1) {
        for (cb, ca) in lb.split(',').zip(la.split(',')) {
            if !cb.trim().is_empty() {
                let vb: f64 = cb.trim().parse().unwrap();
                let va: f64 = ca.trim().parse().unwrap();
                assert!((vb - va).abs() < 1e-9, "observed cell changed: {vb} -> {va}");
            }
        }
    }
    let _ = std::fs::remove_file(&input);
    let _ = std::fs::remove_file(&output);
}

#[test]
fn model_flag_writes_loadable_model() {
    let input = temp("in3.csv");
    let output = temp("out3.csv");
    let model_path = temp("model3.txt");
    write_sample(&input, 60);
    assert!(bin()
        .args(["impute", "--input"])
        .arg(&input)
        .arg("--output")
        .arg(&output)
        .arg("--model")
        .arg(&model_path)
        .args(["--rank", "3", "--max-iter", "20"])
        .status()
        .unwrap()
        .success());
    let model = smfl_core::io::load(&model_path).unwrap();
    assert_eq!(model.u.cols(), 3);
    assert!(model.landmarks.is_some());
    for p in [&input, &output, &model_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn tune_prints_a_ranking() {
    let input = temp("in4.csv");
    write_sample(&input, 80);
    let out = bin()
        .args(["tune", "--input"])
        .arg(&input)
        .args(["--rank", "3", "--max-iter", "30"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("validation RMS"), "{text}");
    assert!(text.contains("best: --lambda"), "{text}");
    let _ = std::fs::remove_file(&input);
}

#[test]
fn bad_invocations_fail_cleanly() {
    // unknown command
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
    // missing input
    let out = bin().args(["impute", "--output", "/tmp/x.csv"]).output().unwrap();
    assert!(!out.status.success());
    // unparseable flag value
    let input = temp("in5.csv");
    write_sample(&input, 30);
    let out = bin()
        .args(["impute", "--input"])
        .arg(&input)
        .args(["--output", "/tmp/x.csv", "--rank", "banana"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_file(&input);
}

#[test]
fn detect_blanks_suspicious_cells() {
    let input = temp("in6.csv");
    let output = temp("out6.csv");
    // clean field plus one gross outlier
    let mut text = String::from("lat,lon,a\n");
    for i in 0..60 {
        let x = (i % 10) as f64 / 10.0;
        let y = (i / 10) as f64 / 6.0;
        let a = if i == 33 { 9.9 } else { 0.4 + 0.1 * x + 0.05 * y };
        text.push_str(&format!("{x:.3},{y:.3},{a:.3}\n"));
    }
    std::fs::write(&input, text).unwrap();
    assert!(bin()
        .args(["detect", "--input"])
        .arg(&input)
        .arg("--output")
        .arg(&output)
        .status()
        .unwrap()
        .success());
    let flagged = std::fs::read_to_string(&output).unwrap();
    // the outlier row must have an empty third cell
    let line34 = flagged.lines().nth(34).unwrap();
    assert!(
        line34.ends_with(','),
        "outlier not blanked: {line34:?}"
    );
    let _ = std::fs::remove_file(&input);
    let _ = std::fs::remove_file(&output);
}
