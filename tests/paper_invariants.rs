//! The paper's structural claims as cross-crate integration tests:
//! landmark geometry (Figs. 1/5), convergence (Propositions 5/7 at
//! pipeline scale), the missing-SI protocol (Table V), and the
//! efficiency mechanism (§IV-E: SMFL updates fewer `V` columns).

use smfl_core::{fit, SmflConfig};
use smfl_datasets::{inject_missing, farm, lake, Scale};
use smfl_linalg::Matrix;

#[test]
fn landmarks_stay_inside_observation_bbox() {
    // Fig. 1 / Fig. 5: SMFL features are geographically close to the
    // data — at minimum inside its bounding box. SMF features have no
    // such guarantee.
    let d = lake(Scale::Small, 4);
    let inj = inject_missing(&d.data, &d.attribute_cols(), 0.10, 50, 0);
    let model = fit(
        &inj.corrupted,
        &inj.omega,
        &SmflConfig::smfl(5, 2).with_max_iter(100),
    )
    .unwrap();
    let locs = model.feature_locations().unwrap();
    let si = d.si();
    let (lo_x, hi_x) = min_max(&si.col(0));
    let (lo_y, hi_y) = min_max(&si.col(1));
    for k in 0..locs.rows() {
        let (x, y) = (locs.get(k, 0), locs.get(k, 1));
        assert!(x >= lo_x && x <= hi_x, "landmark {k} x={x} outside [{lo_x}, {hi_x}]");
        assert!(y >= lo_y && y <= hi_y, "landmark {k} y={y} outside [{lo_y}, {hi_y}]");
    }
}

fn min_max(v: &[f64]) -> (f64, f64) {
    (
        v.iter().cloned().fold(f64::INFINITY, f64::min),
        v.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    )
}

#[test]
fn objective_non_increasing_at_pipeline_scale() {
    let d = farm(Scale::Small, 5);
    let inj = inject_missing(&d.data, &d.attribute_cols(), 0.10, 50, 0);
    for cfg in [
        SmflConfig::nmf(6).with_max_iter(80).with_tol(0.0),
        SmflConfig::smf(6, 2).with_max_iter(80).with_tol(0.0),
        SmflConfig::smfl(6, 2).with_max_iter(80).with_tol(0.0),
    ] {
        let model = fit(&inj.corrupted, &inj.omega, &cfg).unwrap();
        for w in model.objective_history.windows(2) {
            let slack = 1e-8 * w[0].abs().max(1.0);
            assert!(
                w[1] <= w[0] + slack,
                "{:?}: objective rose {} -> {}",
                cfg.variant,
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn missing_spatial_information_degrades_but_still_works() {
    // Table V protocol: holes in the SI columns too. The column-mean
    // initialization (paper §II-C) must keep the fit alive.
    let d = lake(Scale::Small, 6);
    let all: Vec<usize> = (0..d.m()).collect();
    let inj = inject_missing(&d.data, &all, 0.10, 50, 0);
    let model = fit(
        &inj.corrupted,
        &inj.omega,
        &SmflConfig::smfl(5, 2).with_max_iter(100),
    )
    .unwrap();
    assert!(model.u.all_finite() && model.v.all_finite());
    let imputed = model.impute(&inj.corrupted, &inj.omega).unwrap();
    let rms = smfl_eval::rms_over(&imputed, &d.data, &inj.psi).unwrap();
    assert!(rms < 0.6, "Table-V setting RMS implausible: {rms}");
}

#[test]
fn smfl_touches_fewer_v_entries_than_smf() {
    // §IV-E mechanism: after fitting, SMFL's landmark block must hold the
    // injected values exactly, while SMF's same block has been rewritten
    // by the updates.
    let d = lake(Scale::Small, 7);
    let inj = inject_missing(&d.data, &d.attribute_cols(), 0.10, 50, 0);
    let smfl = fit(
        &inj.corrupted,
        &inj.omega,
        &SmflConfig::smfl(5, 2).with_max_iter(50),
    )
    .unwrap();
    let lm = smfl.landmarks.as_ref().unwrap();
    assert!(lm.verify_injected(&smfl.v));

    let smf = fit(
        &inj.corrupted,
        &inj.omega,
        &SmflConfig::smf(5, 2).with_max_iter(50),
    )
    .unwrap();
    // SMF's V spatial block differs from its random initialization and
    // from the k-means centres.
    let smf_block = smf.v.columns(0, 2).unwrap();
    assert!(!smf_block.approx_eq(&lm.centers, 1e-6));
}

#[test]
fn gradient_and_multiplicative_optimizers_land_close() {
    // Fig. 5 companion: both optimizers minimize the same objective, so
    // final objective values must be in the same ballpark (not equal —
    // different local minima are expected).
    let d = farm(Scale::Small, 8);
    let inj = inject_missing(&d.data, &d.attribute_cols(), 0.10, 50, 0);
    let multi = fit(
        &inj.corrupted,
        &inj.omega,
        &SmflConfig::smf(4, 2).with_max_iter(300),
    )
    .unwrap();
    let gd = fit(
        &inj.corrupted,
        &inj.omega,
        &SmflConfig::smf(4, 2)
            .with_gradient_descent(2e-4)
            .with_max_iter(300),
    )
    .unwrap();
    let (om, og) = (
        multi.final_objective().unwrap(),
        gd.final_objective().unwrap(),
    );
    assert!(om.is_finite() && og.is_finite());
    assert!(
        og < om * 20.0 && om < og * 20.0,
        "optimizers diverged wildly: multiplicative {om}, gd {og}"
    );
}

#[test]
fn overcomplete_landmark_dictionary_is_usable() {
    // K > M (more landmarks than columns) is a supported regime.
    let d = lake(Scale::Small, 9);
    let inj = inject_missing(&d.data, &d.attribute_cols(), 0.10, 50, 0);
    let model = fit(
        &inj.corrupted,
        &inj.omega,
        &SmflConfig::smfl(10, 2).with_max_iter(60),
    )
    .unwrap();
    assert_eq!(model.v.shape(), (10, d.m()));
    assert!(model.u.all_finite());
}

#[test]
fn feature_locations_shape_matches_configuration() {
    let d = lake(Scale::Small, 10);
    let inj = inject_missing(&d.data, &d.attribute_cols(), 0.10, 50, 0);
    for k in [3usize, 5] {
        let model = fit(
            &inj.corrupted,
            &inj.omega,
            &SmflConfig::smfl(k, 2).with_max_iter(20),
        )
        .unwrap();
        let locs: Matrix = model.feature_locations().unwrap();
        assert_eq!(locs.shape(), (k, 2));
    }
}
