//! Consistency checks across crate boundaries: search-backend
//! equivalence inside a full fit, CSV round-trips of generated datasets,
//! route bookkeeping, and seed determinism end to end.

use smfl_core::{fit, SmflConfig};
use smfl_datasets::csv::{from_csv_str, to_csv_string};
use smfl_datasets::{inject_missing, lake, vehicle, Scale};
use smfl_eval::route_fuel;
use smfl_spatial::NeighborSearch;

#[test]
fn kdtree_and_bruteforce_graphs_give_identical_fits() {
    // DESIGN.md ablation #3 at pipeline scale: the two neighbour-search
    // backends must produce bit-identical models.
    let full = lake(Scale::Small, 2);
    let d = full.data.rows_range(0, 250).unwrap();
    let mut omega = smfl_linalg::Mask::full(250, full.m());
    for i in (0..250).step_by(7) {
        omega.set(i, 3, false);
    }
    let base = SmflConfig::smfl(5, 2).with_max_iter(40);
    let a = fit(&d, &omega, &base.clone().with_search(NeighborSearch::KdTree)).unwrap();
    let b = fit(&d, &omega, &base.with_search(NeighborSearch::BruteForce)).unwrap();
    assert!(a.u.approx_eq(&b.u, 0.0), "U differs between search backends");
    assert!(a.v.approx_eq(&b.v, 0.0), "V differs between search backends");
}

#[test]
fn generated_datasets_roundtrip_through_csv() {
    let d = lake(Scale::Small, 3);
    let csv = to_csv_string(&d.columns, &d.data);
    let (cols, data) = from_csv_str(&csv).unwrap();
    assert_eq!(cols, d.columns);
    assert!(data.approx_eq(&d.data, 1e-12));
}

#[test]
fn vehicle_routes_integrate_consistently() {
    // route_fuel over a concatenation equals the sum over the parts.
    let d = vehicle(Scale::Small, 4);
    let route = &d.routes.as_ref().unwrap()[0];
    let whole = route_fuel(&d.data, route, 4).unwrap();
    let mid = route.len() / 2;
    let first = route_fuel(&d.data, &route[..=mid], 4).unwrap();
    let second = route_fuel(&d.data, &route[mid..], 4).unwrap();
    assert!(
        (whole - (first + second)).abs() < 1e-10,
        "split route integral mismatch: {whole} vs {first} + {second}"
    );
}

#[test]
fn full_pipeline_is_seed_deterministic() {
    let d = lake(Scale::Small, 5);
    let run = || {
        let inj = inject_missing(&d.data, &d.attribute_cols(), 0.10, 50, 9);
        let model = fit(
            &inj.corrupted,
            &inj.omega,
            &SmflConfig::smfl(5, 2).with_max_iter(30).with_seed(11),
        )
        .unwrap();
        model.impute(&inj.corrupted, &inj.omega).unwrap()
    };
    let a = run();
    let b = run();
    assert!(a.approx_eq(&b, 0.0));
}

#[test]
fn dataset_scales_share_structure() {
    // Small and Paper profiles must agree on schema; only N changes.
    {
        let (small, paper) = (lake(Scale::Small, 1), lake(Scale::Paper, 1));
        assert_eq!(small.m(), paper.m());
        assert_eq!(small.columns, paper.columns);
        assert!(paper.n() > small.n());
        assert!(paper.validate());
    }
}

#[test]
fn normalization_invariant_holds_downstream() {
    // Every generated dataset is in [0, 1]; the multiplicative updater
    // requires nonnegative observed data — this is the contract seam.
    for d in smfl_datasets::all_datasets(Scale::Small, 6) {
        assert!(d.data.min().unwrap() >= 0.0, "{}", d.name);
        assert!(d.data.max().unwrap() <= 1.0, "{}", d.name);
        let inj = inject_missing(&d.data, &d.attribute_cols(), 0.05, 20, 0);
        // The fit must accept every generated dataset without validation
        // errors.
        let data_head = inj.corrupted.rows_range(0, 150.min(d.n())).unwrap();
        let mut omega_head = smfl_linalg::Mask::full(data_head.rows(), d.m());
        for (i, j) in inj.omega.complement().iter_set() {
            if i < data_head.rows() {
                omega_head.set(i, j, false);
            }
        }
        let model = fit(
            &data_head,
            &omega_head,
            &SmflConfig::smfl(4, 2).with_max_iter(10),
        )
        .unwrap();
        assert!(model.u.all_finite(), "{}", d.name);
    }
}
