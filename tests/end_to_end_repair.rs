//! Cross-crate integration for the repair task (paper Table VI):
//! inject same-domain errors, repair with every method, check the
//! contract and the paper's ordering (MF family beats dedicated
//! repairers on spatial data).

use smfl_baselines::{BaranLite, HoloCleanLite, ImputerRepairer, MfImputer, Repairer};
use smfl_datasets::{inject_errors, lake, Scale};
use smfl_eval::rms_over;

fn setup() -> (smfl_datasets::Dataset, smfl_datasets::Injection) {
    let full = lake(Scale::Small, 1);
    let d = smfl_datasets::Dataset {
        name: full.name.clone(),
        data: full.data.rows_range(0, 300).unwrap(),
        spatial_cols: full.spatial_cols,
        columns: full.columns.clone(),
        cluster_labels: None,
        routes: None,
    };
    let inj = inject_errors(&d.data, 0.10, 50, 0);
    (d, inj)
}

fn repairers() -> Vec<Box<dyn Repairer>> {
    vec![
        Box::new(BaranLite),
        Box::new(HoloCleanLite::default()),
        Box::new(ImputerRepairer::new(
            MfImputer::nmf(5).with_max_iter(100),
            "NMF",
        )),
        Box::new(ImputerRepairer::new(
            MfImputer::smf(5, 2).with_max_iter(100),
            "SMF",
        )),
        Box::new(ImputerRepairer::new(
            MfImputer::smfl(5, 2).with_max_iter(100),
            "SMFL",
        )),
    ]
}

#[test]
fn every_repairer_improves_on_doing_nothing() {
    let (d, inj) = setup();
    let untouched = rms_over(&inj.corrupted, &d.data, &inj.psi).unwrap();
    for rep in repairers() {
        let out = rep.repair(&inj.corrupted, &inj.psi).unwrap();
        let rms = rms_over(&out, &d.data, &inj.psi).unwrap();
        assert!(
            rms < untouched,
            "{} failed to improve: {rms} vs untouched {untouched}",
            rep.name()
        );
    }
}

#[test]
fn clean_cells_are_never_modified() {
    let (_, inj) = setup();
    for rep in repairers() {
        let out = rep.repair(&inj.corrupted, &inj.psi).unwrap();
        for (i, j) in inj.omega.iter_set() {
            assert_eq!(
                out.get(i, j),
                inj.corrupted.get(i, j),
                "{} modified clean cell ({i},{j})",
                rep.name()
            );
        }
    }
}

#[test]
fn spatial_mf_repair_beats_generic_repairers() {
    // Table VI's shape on the Economic analogue, averaged over three
    // injection seeds (the paper's protocol): SMFL best overall, Baran
    // clearly behind the MF family, SMFL ≤ SMF ≤ NMF among MF variants.
    let d = smfl_datasets::economic(Scale::Small, 0);
    let mut sums = [0.0f64; 4]; // baran, nmf, smf, smfl
    for seed in 0..3u64 {
        let inj = inject_errors(&d.data, 0.10, 50, seed);
        let reps: Vec<Box<dyn Repairer>> = vec![
            Box::new(BaranLite),
            Box::new(ImputerRepairer::new(MfImputer::nmf(6).with_seed(seed), "NMF")),
            Box::new(ImputerRepairer::new(
                MfImputer::smf(6, 2).with_seed(seed),
                "SMF",
            )),
            Box::new(ImputerRepairer::new(
                MfImputer::smfl(6, 2).with_seed(seed),
                "SMFL",
            )),
        ];
        for (k, rep) in reps.iter().enumerate() {
            let out = rep.repair(&inj.corrupted, &inj.psi).unwrap();
            sums[k] += rms_over(&out, &d.data, &inj.psi).unwrap();
        }
    }
    let [baran, nmf, smf, smfl] = sums.map(|s| s / 3.0);
    assert!(smfl < baran, "SMFL ({smfl}) should beat Baran ({baran})");
    assert!(smfl < nmf, "SMFL ({smfl}) should beat NMF ({nmf})");
    assert!(smf < baran, "SMF ({smf}) should beat Baran ({baran})");
    assert!(
        smfl < smf + 0.01,
        "SMFL ({smfl}) should not trail SMF ({smf}) meaningfully"
    );
}

#[test]
fn corrupted_values_never_leak_into_mf_repair() {
    // The adapter blanks dirty cells; the fit must not depend on them.
    let (_, inj) = setup();
    let mut corrupted_alt = inj.corrupted.clone();
    for (i, j) in inj.psi.iter_set() {
        corrupted_alt.set(i, j, 0.77); // different garbage, same positions
    }
    let rep = ImputerRepairer::new(MfImputer::smf(4, 2).with_max_iter(50), "SMF");
    let a = rep.repair(&inj.corrupted, &inj.psi).unwrap();
    let b = rep.repair(&corrupted_alt, &inj.psi).unwrap();
    for (i, j) in inj.psi.iter_set() {
        assert_eq!(
            a.get(i, j),
            b.get(i, j),
            "repair value at ({i},{j}) depends on the corrupted value"
        );
    }
}
