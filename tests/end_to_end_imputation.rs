//! Cross-crate integration: the full Table-IV pipeline — generate a
//! dataset (`smfl-datasets`), inject missing cells, run imputers
//! (`smfl-baselines` / `smfl-core`), score with `smfl-eval`.

use smfl_baselines::{
    DlmImputer, Imputer, IterativeImputer, KnnImputer, MeanImputer, MfImputer,
    SoftImputeImputer,
};
use smfl_datasets::{inject_missing, lake, Scale};
use smfl_eval::rms_over;
use smfl_linalg::Matrix;

fn small_lake() -> smfl_datasets::Dataset {
    let full = lake(Scale::Small, 0);
    smfl_datasets::Dataset {
        name: full.name.clone(),
        data: full.data.rows_range(0, 300).unwrap(),
        spatial_cols: full.spatial_cols,
        columns: full.columns.clone(),
        cluster_labels: full.cluster_labels.as_ref().map(|l| l[..300].to_vec()),
        routes: None,
    }
}

fn run(imputer: &dyn Imputer) -> (f64, Matrix) {
    let d = small_lake();
    let inj = inject_missing(&d.data, &d.attribute_cols(), 0.10, 50, 0);
    let out = imputer.impute(&inj.corrupted, &inj.omega).unwrap();
    let rms = rms_over(&out, &d.data, &inj.psi).unwrap();
    (rms, out)
}

#[test]
fn every_imputer_completes_the_pipeline() {
    let imputers: Vec<Box<dyn Imputer>> = vec![
        Box::new(MeanImputer),
        Box::new(KnnImputer::default()),
        Box::new(DlmImputer::default()),
        Box::new(SoftImputeImputer::default()),
        Box::new(IterativeImputer::default()),
        Box::new(MfImputer::nmf(5).with_max_iter(100)),
        Box::new(MfImputer::smf(5, 2).with_max_iter(100)),
        Box::new(MfImputer::smfl(5, 2).with_max_iter(100)),
    ];
    for imp in &imputers {
        let (rms, out) = run(imp.as_ref());
        assert!(out.all_finite(), "{} produced non-finite values", imp.name());
        assert!(
            rms > 0.0 && rms < 0.6,
            "{} RMS {rms} outside plausible range",
            imp.name()
        );
    }
}

#[test]
fn spatial_models_beat_plain_nmf() {
    // The paper's headline ordering, at integration scale.
    let (nmf, _) = run(&MfImputer::nmf(5).with_max_iter(200));
    let (smf, _) = run(&MfImputer::smf(5, 2).with_max_iter(200));
    let (smfl, _) = run(&MfImputer::smfl(5, 2).with_max_iter(200));
    assert!(smf < nmf, "SMF ({smf}) must beat NMF ({nmf})");
    assert!(smfl < nmf, "SMFL ({smfl}) must beat NMF ({nmf})");
}

#[test]
fn informed_methods_beat_mean_imputation() {
    let (mean, _) = run(&MeanImputer);
    // Run SMFL at the λ/p operating point for this repo's generators
    // (DESIGN.md §7): the paper's §IV-D likewise tunes λ and p per
    // dataset before comparing against the uninformed baselines.
    let mut smfl_imp = MfImputer::smfl(5, 2).with_max_iter(200);
    smfl_imp.config = smfl_imp.config.with_lambda(3.0).with_p(5);
    let (smfl, _) = run(&smfl_imp);
    let (knn, _) = run(&KnnImputer::default());
    assert!(smfl < mean, "SMFL ({smfl}) must beat Mean ({mean})");
    assert!(knn < mean, "kNN ({knn}) must beat Mean ({mean})");
}

#[test]
fn observed_cells_survive_every_method() {
    let d = small_lake();
    let inj = inject_missing(&d.data, &d.attribute_cols(), 0.15, 30, 1);
    for imp in [
        Box::new(MeanImputer) as Box<dyn Imputer>,
        Box::new(MfImputer::smfl(4, 2).with_max_iter(30)),
        Box::new(SoftImputeImputer::default()),
    ] {
        let out = imp.impute(&inj.corrupted, &inj.omega).unwrap();
        for (i, j) in inj.omega.iter_set() {
            assert_eq!(
                out.get(i, j),
                inj.corrupted.get(i, j),
                "{} altered an observed cell",
                imp.name()
            );
        }
    }
}

#[test]
fn higher_missing_rate_does_not_help() {
    // RMS at 40% missing should not be better than at 10% for the same
    // method and seed (monotone degradation, Table VII's trend).
    let d = small_lake();
    let imp = MfImputer::smfl(5, 2).with_max_iter(150);
    let mut rms_by_rate = Vec::new();
    for &rate in &[0.10, 0.40] {
        let inj = inject_missing(&d.data, &d.attribute_cols(), rate, 50, 0);
        let out = imp.impute(&inj.corrupted, &inj.omega).unwrap();
        rms_by_rate.push(rms_over(&out, &d.data, &inj.psi).unwrap());
    }
    assert!(
        rms_by_rate[1] > rms_by_rate[0] * 0.8,
        "40% missing ({}) implausibly easier than 10% ({})",
        rms_by_rate[1],
        rms_by_rate[0]
    );
}
